// Benchmarks mirroring every table and figure of the paper's evaluation
// (§7), one per experiment ID, at laptop scale. The full paper-style sweeps
// with printed rows live in cmd/benchfig (go run ./cmd/benchfig -fig all);
// these testing.B benchmarks measure the core operation behind each
// experiment so that regressions in any reproduced result show up in
// `go test -bench`.
package firmament

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"firmament/internal/cluster"
	"firmament/internal/core"
	"firmament/internal/experiments"
	"firmament/internal/flow"
	"firmament/internal/mcmf"
	"firmament/internal/policy"
	"firmament/internal/service"
	"firmament/internal/sim"
	"firmament/internal/storage"
	"firmament/internal/template"
	"firmament/internal/trace"
)

// benchGraph lazily builds and caches a warmed scheduling graph of the
// given size (building one takes seconds; benchmarks clone it per run).
var benchGraphs sync.Map

func warmGraph(b *testing.B, machines int) *flow.Graph {
	b.Helper()
	if g, ok := benchGraphs.Load(machines); ok {
		return g.(*flow.Graph)
	}
	_, g := experiments.WarmedForProfile(machines, 0.5, 42, core.ModeQuincy)
	benchGraphs.Store(machines, g)
	return g
}

func solveBench(b *testing.B, g *flow.Graph, s mcmf.Solver, opts *mcmf.Options) {
	b.Helper()
	b.ReportAllocs()
	clone := g.Clone()
	// Warm-up solve outside the timer: the first solve on a fresh solver
	// grows its pinned scratch to the graph's size, a one-time cost that
	// would otherwise dominate single-iteration (-benchtime 1x) runs of
	// the large variants.
	if _, err := s.Solve(clone, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.CloneInto(clone)
		b.StartTimer()
		if _, err := s.Solve(clone, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3QuincyRuntime measures the Quincy baseline: one from-scratch
// cost scaling solve over a warmed 150-machine scheduling graph (Figure 3).
func BenchmarkFig3QuincyRuntime(b *testing.B) {
	solveBench(b, warmGraph(b, 150), mcmf.NewCostScaling(), nil)
}

// BenchmarkFig7Algorithms compares the four MCMF algorithms from scratch on
// the same scheduling graph (Figure 7). Cycle canceling runs on a smaller
// graph; it would dominate the suite otherwise.
func BenchmarkFig7Algorithms(b *testing.B) {
	ap := &mcmf.Options{ArcPrioritization: true}
	b.Run("relaxation", func(b *testing.B) { solveBench(b, warmGraph(b, 150), mcmf.NewRelaxation(), ap) })
	b.Run("cost-scaling", func(b *testing.B) { solveBench(b, warmGraph(b, 150), mcmf.NewCostScaling(), nil) })
	b.Run("succ-shortest-path", func(b *testing.B) {
		solveBench(b, warmGraph(b, 150), mcmf.NewSuccessiveShortestPath(), nil)
	})
	b.Run("cycle-canceling", func(b *testing.B) {
		solveBench(b, warmGraph(b, 25), mcmf.NewCycleCanceling(), nil)
	})
}

// largeBenchSizes gates the 1k/5k-machine bench variants: warming a
// 5,000-machine graph takes minutes, so they only run when
// FIRMAMENT_BENCH_LARGE is set (scripts/bench.sh forwards it; CI smoke
// stays on the 150-machine graphs).
func largeBenchSizes(b *testing.B) []int {
	b.Helper()
	if os.Getenv("FIRMAMENT_BENCH_LARGE") == "" {
		b.Skip("set FIRMAMENT_BENCH_LARGE=1 to run the 1k/5k-machine variants")
	}
	return []int{1000, 5000}
}

// BenchmarkFig7Large is the Figure 7 from-scratch comparison at 1,000 and
// 5,000 machines — the scale band where the paper's sub-second claim lives.
// Cycle canceling is omitted (hours at this size).
func BenchmarkFig7Large(b *testing.B) {
	ap := &mcmf.Options{ArcPrioritization: true}
	for _, m := range largeBenchSizes(b) {
		m := m
		b.Run(fmt.Sprintf("machines-%d", m), func(b *testing.B) {
			b.Run("relaxation", func(b *testing.B) { solveBench(b, warmGraph(b, m), mcmf.NewRelaxation(), ap) })
			b.Run("cost-scaling", func(b *testing.B) { solveBench(b, warmGraph(b, m), mcmf.NewCostScaling(), nil) })
			b.Run("succ-shortest-path", func(b *testing.B) {
				solveBench(b, warmGraph(b, m), mcmf.NewSuccessiveShortestPath(), nil)
			})
		})
	}
}

// BenchmarkFig11Large is the Figure 11 incremental-vs-from-scratch
// comparison at 1,000 and 5,000 machines.
func BenchmarkFig11Large(b *testing.B) {
	for _, m := range largeBenchSizes(b) {
		m := m
		b.Run(fmt.Sprintf("machines-%d", m), func(b *testing.B) {
			g, changes := experiments.ChangedGraph(m, 42)
			b.Run("incremental", func(b *testing.B) {
				cs := mcmf.NewCostScaling()
				clone := g.Clone()
				if _, err := cs.SolveIncremental(clone, changes, nil); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g.CloneInto(clone)
					b.StartTimer()
					if _, err := cs.SolveIncremental(clone, changes, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("from-scratch", func(b *testing.B) {
				solveBench(b, g, mcmf.NewCostScaling(), nil)
			})
		})
	}
}

// oversubscribedGraph builds the Figure 8 scenario once.
var oversubOnce sync.Once
var oversubGraph *flow.Graph

func fig8Graph(b *testing.B) *flow.Graph {
	b.Helper()
	oversubOnce.Do(func() {
		oversubGraph = experiments.OversubscribedGraph(150, 0.12, 42)
	})
	return oversubGraph
}

// BenchmarkFig8Utilization measures both racing algorithms on an
// oversubscribed cluster snapshot (Figure 8).
func BenchmarkFig8Utilization(b *testing.B) {
	ap := &mcmf.Options{ArcPrioritization: true}
	b.Run("relaxation", func(b *testing.B) { solveBench(b, fig8Graph(b), mcmf.NewRelaxation(), ap) })
	b.Run("cost-scaling", func(b *testing.B) { solveBench(b, fig8Graph(b), mcmf.NewCostScaling(), nil) })
}

// contendedGraph builds the Figure 9 scenario once.
var contendedOnce sync.Once
var contendedG *flow.Graph

func fig9Graph(b *testing.B) *flow.Graph {
	b.Helper()
	contendedOnce.Do(func() {
		g, err := experiments.ContendedGraph(250, 1000, 42)
		if err != nil {
			b.Fatal(err)
		}
		contendedG = g
	})
	return contendedG
}

// BenchmarkFig9LargeJob measures the load-spreading contention edge case: a
// 1,000-task job arriving on a skew-loaded 250-machine cluster (Figure 9).
// Relaxation's time grows linearly with the job size; cost scaling's stays
// flat.
func BenchmarkFig9LargeJob(b *testing.B) {
	ap := &mcmf.Options{ArcPrioritization: true}
	b.Run("relaxation", func(b *testing.B) { solveBench(b, fig9Graph(b), mcmf.NewRelaxation(), ap) })
	b.Run("cost-scaling", func(b *testing.B) { solveBench(b, fig9Graph(b), mcmf.NewCostScaling(), nil) })
}

// BenchmarkFig10Approximate measures a solve with per-iteration snapshot
// hooks firing — the instrumentation cost of the early-termination
// experiment (Figure 10).
func BenchmarkFig10Approximate(b *testing.B) {
	g := warmGraph(b, 150)
	snaps := 0
	opts := &mcmf.Options{SnapshotHook: func(time.Duration) { snaps++ }}
	solveBench(b, g, mcmf.NewCostScaling(), opts)
	if snaps == 0 {
		b.Fatal("snapshot hook never fired")
	}
}

// BenchmarkFig11Incremental measures one incremental cost scaling round
// after a realistic change batch, against the from-scratch alternative
// (Figure 11).
func BenchmarkFig11Incremental(b *testing.B) {
	g, changes := experiments.ChangedGraph(150, 42)
	b.Run("incremental", func(b *testing.B) {
		cs := mcmf.NewCostScaling()
		clone := g.Clone()
		if _, err := cs.SolveIncremental(clone, changes, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g.CloneInto(clone)
			b.StartTimer()
			if _, err := cs.SolveIncremental(clone, changes, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("from-scratch", func(b *testing.B) {
		solveBench(b, g, mcmf.NewCostScaling(), nil)
	})
}

// BenchmarkFig12aArcPrioritization measures relaxation with and without the
// §5.3.1 heuristic on the contended graph (Figure 12a).
func BenchmarkFig12aArcPrioritization(b *testing.B) {
	b.Run("with-AP", func(b *testing.B) {
		solveBench(b, fig9Graph(b), mcmf.NewRelaxation(), &mcmf.Options{ArcPrioritization: true})
	})
	b.Run("without-AP", func(b *testing.B) {
		solveBench(b, fig9Graph(b), mcmf.NewRelaxation(), &mcmf.Options{ArcPrioritization: false})
	})
}

// BenchmarkFig12bTaskRemoval measures the graph-side cost of removing a
// running task with and without the §5.3.2 flow-draining heuristic
// (Figure 12b's mechanism; the solver-side effect is in cmd/benchfig).
func BenchmarkFig12bTaskRemoval(b *testing.B) {
	for _, heuristic := range []bool{true, false} {
		name := "with-drain"
		if !heuristic {
			name = "without-drain"
		}
		b.Run(name, func(b *testing.B) {
			cl := cluster.New(cluster.Topology{Racks: 2, MachinesPerRack: 8, SlotsPerMachine: 8})
			sched := core.NewScheduler(cl, policy.NewLoadSpread(cl), core.Config{
				Mode: core.ModeIncrementalCostScaling, TaskRemovalHeuristic: heuristic,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				job := cl.SubmitJob(cluster.Batch, 0, 0, make([]cluster.TaskSpec, 16))
				if _, _, err := sched.RunOnce(0); err != nil {
					b.Fatal(err)
				}
				for _, id := range job.Tasks {
					if cl.Task(id).State == cluster.TaskRunning {
						cl.Complete(id, time.Second)
					}
				}
				ev := cl.DrainEvents()
				b.StartTimer()
				sched.GraphManager().ApplyEvents(ev)
			}
		})
	}
}

// BenchmarkFig13PriceRefine measures the price refine pass that transfers a
// relaxation solution into cost scaling's scaled potential domain
// (Figure 13, §6.2).
func BenchmarkFig13PriceRefine(b *testing.B) {
	g := warmGraph(b, 150).Clone()
	if _, err := mcmf.NewRelaxation().Solve(g, &mcmf.Options{ArcPrioritization: true}); err != nil {
		b.Fatal(err)
	}
	scale := mcmf.NewCostScaling().ScaleFor(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !mcmf.PriceRefine(g, scale, 0, nil) {
			b.Fatal("price refine failed on optimal flow")
		}
	}
}

// BenchmarkFig14PlacementLatency measures one full Firmament scheduling
// round — graph update, speculative dual solve, extraction, application —
// the pipeline whose latency Figure 14 reports.
func BenchmarkFig14PlacementLatency(b *testing.B) {
	cl := cluster.New(cluster.Topology{Racks: 6, MachinesPerRack: 25, SlotsPerMachine: 12})
	store := storage.NewStore(cl, storage.Config{Seed: 42, BlockSize: 1 << 30})
	sched := core.NewScheduler(cl, policy.NewQuincy(cl, store), core.DefaultConfig())
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		now += time.Second
		specs := make([]cluster.TaskSpec, 20)
		for j := range specs {
			f := store.AddFile(2 << 30)
			specs[j] = cluster.TaskSpec{Duration: time.Hour, InputFile: f, InputSize: 2 << 30}
		}
		job := cl.SubmitJob(cluster.Batch, 0, now, specs)
		b.StartTimer()
		if _, _, err := sched.RunOnce(now); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		// Keep utilization steady.
		for _, id := range job.Tasks {
			if cl.Task(id).State == cluster.TaskRunning {
				cl.Complete(id, now)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkFig15Threshold measures the graph update pass at the 14% and 2%
// locality thresholds: the 2% threshold yields many more preference arcs
// (Figure 15).
func BenchmarkFig15Threshold(b *testing.B) {
	for _, th := range []struct {
		name string
		frac float64
	}{{"threshold-14pct", 0.14}, {"threshold-2pct", 0.02}} {
		b.Run(th.name, func(b *testing.B) {
			cl := cluster.New(cluster.Topology{Racks: 4, MachinesPerRack: 25, SlotsPerMachine: 12})
			store := storage.NewStore(cl, storage.Config{Seed: 42, BlockSize: 1 << 30})
			q := policy.NewQuincy(cl, store)
			q.PreferenceThreshold = th.frac
			sched := core.NewScheduler(cl, q, core.DefaultConfig())
			specs := make([]cluster.TaskSpec, 300)
			for j := range specs {
				f := store.AddFile(8 << 30)
				specs[j] = cluster.TaskSpec{Duration: time.Hour, InputFile: f, InputSize: 8 << 30}
			}
			cl.SubmitJob(cluster.Batch, 0, 0, specs)
			gm := sched.GraphManager()
			gm.ApplyEvents(cl.DrainEvents())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gm.UpdateRound(time.Duration(i) * time.Millisecond)
			}
		})
	}
}

// BenchmarkFig16Oversubscription measures the speculative solver pool on an
// oversubscribed snapshot — the situation where racing both algorithms pays
// (Figure 16).
func BenchmarkFig16Oversubscription(b *testing.B) {
	g := fig8Graph(b)
	pool := core.NewSolverPool(core.ModeFirmament)
	pool.Options.ArcPrioritization = true
	pool.Options.Alpha = 9
	var changes flow.ChangeSet
	clone := g.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.CloneInto(clone)
		b.StartTimer()
		if _, err := pool.Solve(clone, &changes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17BreakingPoint runs a short all-small-tasks simulation (jobs
// of 10 tasks at 80% load, Figure 17) end to end.
func BenchmarkFig17BreakingPoint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := trace.Uniform(10, 50*time.Millisecond, 25*time.Millisecond, time.Second)
		res, err := sim.Run(sim.Config{
			Topology: cluster.Topology{Racks: 2, MachinesPerRack: 10, SlotsPerMachine: 4},
			Workload: w,
			Seed:     42,
			NewFlowScheduler: func(env *sim.Env) *core.Scheduler {
				return core.NewScheduler(env.Cluster, policy.NewLoadSpread(env.Cluster), core.DefaultConfig())
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.TasksCompleted == 0 {
			b.Fatal("no tasks completed")
		}
	}
}

// BenchmarkFig18Speedup replays a 150×-accelerated Google-shape trace
// against Firmament (Figure 18).
func BenchmarkFig18Speedup(b *testing.B) {
	w := trace.Generate(trace.Config{
		Machines: 50, Utilization: 0.85, Horizon: 2 * time.Second,
		Speedup: 150, Seed: 42, Prefill: true,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Topology:   cluster.Topology{Racks: 2, MachinesPerRack: 25, SlotsPerMachine: 12},
			Workload:   w,
			Seed:       42,
			UseStorage: true,
			MaxVirtual: 10 * time.Second,
			NewFlowScheduler: func(env *sim.Env) *core.Scheduler {
				return core.NewScheduler(env.Cluster,
					policy.NewQuincy(env.Cluster, env.Store), core.DefaultConfig())
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchTestbed runs a short Figure 19 testbed simulation.
func benchTestbed(b *testing.B, loaded bool) {
	b.Helper()
	const gbps = 1000 * 1000 * 1000 / 8
	var bg []sim.BackgroundFlow
	if loaded {
		for i := 0; i < 14; i++ {
			bg = append(bg, sim.BackgroundFlow{
				Src: cluster.MachineID(i % 20), Dst: cluster.MachineID(20 + i%7),
				Class: 0, RateLimit: 4 * gbps,
			})
		}
	}
	w := &trace.Workload{Horizon: 5 * time.Second}
	for i := 0; i < 12; i++ {
		w.Jobs = append(w.Jobs, trace.JobTrace{
			Submit: time.Duration(i) * 400 * time.Millisecond,
			Class:  cluster.Batch,
			Tasks: []trace.TaskTrace{{
				Duration: 4 * time.Second, InputSize: 5 << 30, NetDemand: (5 << 30) / 4,
			}},
		})
	}
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Topology:   cluster.Topology{Racks: 4, MachinesPerRack: 10, SlotsPerMachine: 4, NICBps: 10 * gbps},
			Workload:   w,
			Seed:       42,
			UseStorage: true,
			UseFabric:  true,
			Background: bg,
			NewFlowScheduler: func(env *sim.Env) *core.Scheduler {
				return core.NewScheduler(env.Cluster,
					policy.NewNetworkAware(env.Cluster, env.Fabric), core.DefaultConfig())
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig19aIdleNetwork runs the 40-machine testbed model with an idle
// network (Figure 19a).
func BenchmarkFig19aIdleNetwork(b *testing.B) { benchTestbed(b, false) }

// BenchmarkFig19bLoadedNetwork runs it with the background iperf traffic
// (Figure 19b).
func BenchmarkFig19bLoadedNetwork(b *testing.B) { benchTestbed(b, true) }

// BenchmarkGraphUpdate measures the two-pass flow network update (§6.3).
func BenchmarkGraphUpdate(b *testing.B) {
	cl := cluster.New(cluster.Topology{Racks: 6, MachinesPerRack: 25, SlotsPerMachine: 12})
	store := storage.NewStore(cl, storage.Config{Seed: 42, BlockSize: 1 << 30})
	sched := core.NewScheduler(cl, policy.NewQuincy(cl, store), core.DefaultConfig())
	specs := make([]cluster.TaskSpec, 900)
	for j := range specs {
		f := store.AddFile(4 << 30)
		specs[j] = cluster.TaskSpec{Duration: time.Hour, InputFile: f, InputSize: 4 << 30}
	}
	cl.SubmitJob(cluster.Batch, 0, 0, specs)
	gm := sched.GraphManager()
	gm.ApplyEvents(cl.DrainEvents())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm.UpdateRound(time.Duration(i) * time.Millisecond)
	}
}

// BenchmarkExtraction measures placement extraction (Listing 1).
func BenchmarkExtraction(b *testing.B) {
	sched, _ := experiments.WarmedSchedulerForProfile(250, 0.8, 42)
	gm := sched.GraphManager()
	if _, err := mcmf.NewRelaxation().Solve(gm.Graph(), &mcmf.Options{ArcPrioritization: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := gm.ExtractPlacements()
		if len(m) == 0 {
			b.Fatal("no placements extracted")
		}
	}
}

// BenchmarkServiceSubmitContention measures aggregate front-door submit
// throughput as the submitter count grows. Before the sharded front door,
// every submission serialized on one cluster-wide mutex and aggregate
// throughput collapsed past ~16 submitters; with per-shard locks the
// aggregate figure should hold (or grow) from 1 through 32 submitters.
// The scheduling loop runs concurrently on a long round interval — its
// solve happens under no cluster lock, so it does not gate the submitters
// being measured.
func BenchmarkServiceSubmitContention(b *testing.B) {
	for _, submitters := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("submitters-%d", submitters), func(b *testing.B) {
			cl := cluster.New(cluster.Topology{Racks: 8, MachinesPerRack: 16, SlotsPerMachine: 64})
			svc := service.New(cl, policy.NewLoadSpread(cl), core.DefaultConfig(),
				service.Config{RoundInterval: 100 * time.Millisecond})
			defer svc.Close()
			specs := make([]cluster.TaskSpec, 1)
			var issued atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < submitters; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for issued.Add(1) <= int64(b.N) {
						if _, err := svc.Submit(cluster.Batch, 0, specs); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "submits/s")
		})
	}
}

// BenchmarkClone measures the per-round replica clone the solver pool pays
// for speculative execution (§6.1).
func BenchmarkClone(b *testing.B) {
	g := warmGraph(b, 450)
	clone := g.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CloneInto(clone)
	}
}

// BenchmarkRestore measures crash recovery: rebuilding a service — cluster
// tables plus the warm flow network — from a journal directory holding a
// snapshot of a loaded 64-machine cluster. This is the restart-to-scheduling
// time a durable deployment pays, and it must stay far below a from-scratch
// graph rebuild plus cold solve for the warm-start design to carry its
// weight.
func BenchmarkRestore(b *testing.B) {
	dir := b.TempDir()
	opts := ServiceOptions{
		Topology:   Topology{Racks: 4, MachinesPerRack: 16, SlotsPerMachine: 16},
		Model:      func(cl *Cluster) CostModel { return NewLoadSpreadPolicy(cl) },
		Scheduler:  DefaultConfig(),
		Service:    ServiceConfig{RoundInterval: time.Millisecond},
		Durability: DurabilityConfig{Dir: dir, Sync: SyncNone},
	}
	svc, _, err := OpenService(opts)
	if err != nil {
		b.Fatal(err)
	}
	events, cancel := svc.Watch()
	const jobs, tasksPerJob = 32, 16
	for i := 0; i < jobs; i++ {
		if _, err := svc.Submit(Batch, 0, make([]TaskSpec, tasksPerJob)); err != nil {
			b.Fatal(err)
		}
	}
	placed := 0
	for placed < jobs*tasksPerJob {
		if p := <-events; p.Kind == DecisionPlaced {
			placed++
		}
	}
	cancel()
	if err := svc.Close(); err != nil { // cuts the snapshot the restore loads
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, info, err := ReplayJournal(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Restored || info.RunningTasks != jobs*tasksPerJob {
			b.Fatalf("bad restore: %+v", info)
		}
		b.StopTimer()
		svc.Close()
		b.StartTimer()
	}
}

// BenchmarkTemplateHitPath compares what a recurring job submission costs
// with and without the placement-template fast path (internal/template,
// docs/templates.md). The /hit variant runs exactly the admission sequence
// a warm service round runs — gather the slot profile, fingerprint the job,
// look up the cached template, validate it against live machine state, and
// commit the placements — while /solver pays the full scheduling round
// (graph update, min-cost solve, extraction, application) for the same
// recurring job. The fast path must beat the solver by well over an order
// of magnitude; that gap is the entire case for the cache.
func BenchmarkTemplateHitPath(b *testing.B) {
	topo := cluster.Topology{Racks: 4, MachinesPerRack: 16, SlotsPerMachine: 8}
	const tasksPerJob = 16
	specs := make([]cluster.TaskSpec, tasksPerJob)
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncrementalCostScaling

	b.Run("hit", func(b *testing.B) {
		cl := cluster.New(topo)
		model := policy.NewLoadSpread(cl)
		sig := model.TemplateSignature()
		cache := template.NewCache(template.DefaultCapacity)
		view := func(m cluster.MachineID) (running, slots int, healthy bool) {
			mm := cl.Machine(m)
			return mm.Running(), mm.Slots, mm.Healthy()
		}

		// Record the template the way a miss does: solve the first
		// submission for real and capture where the solver put each task,
		// at which occupancy level.
		sched := core.NewScheduler(cl, model, cfg)
		job0 := cl.SubmitJob(cluster.Batch, 0, 0, specs)
		shape, ok := template.JobShape(cl, job0, sig, 0)
		if !ok {
			b.Fatal("job shape not templateable")
		}
		profile := template.GatherProfile(cl, nil)
		r, err := sched.Schedule(0)
		if err != nil {
			b.Fatal(err)
		}
		level := make(map[cluster.MachineID]int32)
		assign := make([]template.Assignment, 0, tasksPerJob)
		for _, tid := range job0.Tasks {
			m, ok := r.Mappings[tid]
			if !ok {
				b.Fatal("recording solve left a task unplaced")
			}
			assign = append(assign, template.Assignment{Machine: m, Level: level[m]})
			level[m]++
		}
		cache.Insert(&template.Template{
			FP:      template.Fingerprint(shape, profile),
			Shape:   shape,
			Profile: append([]template.Slot(nil), profile...),
			Assign:  assign,
		})
		for _, tid := range job0.Tasks {
			cl.Complete(tid, 0)
		}
		cl.DrainEvents()

		now := time.Millisecond
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			now += time.Millisecond
			job := cl.SubmitJob(cluster.Batch, 0, now, specs)
			b.StartTimer()

			shape, ok := template.JobShape(cl, job, sig, 0)
			if !ok {
				b.Fatal("job shape not templateable")
			}
			profile = template.GatherProfile(cl, profile)
			tpl := cache.Lookup(template.Fingerprint(shape, profile))
			if tpl == nil || !tpl.Matches(shape, profile) || !tpl.Validate(view) {
				b.Fatal("recurring submission missed the cache")
			}
			for i, as := range tpl.Assign {
				if err := cl.Place(job.Tasks[i], as.Machine, now); err != nil {
					b.Fatal(err)
				}
			}

			b.StopTimer()
			for _, tid := range job.Tasks {
				cl.Complete(tid, now)
			}
			cl.DrainEvents()
			b.StartTimer()
		}
	})

	b.Run("solver", func(b *testing.B) {
		cl := cluster.New(topo)
		sched := core.NewScheduler(cl, policy.NewLoadSpread(cl), cfg)
		// Warm round so the incremental solver starts from a solved flow,
		// like the service between rounds.
		job0 := cl.SubmitJob(cluster.Batch, 0, 0, specs)
		if _, _, err := sched.RunOnce(0); err != nil {
			b.Fatal(err)
		}
		for _, tid := range job0.Tasks {
			if cl.Task(tid).State == cluster.TaskRunning {
				cl.Complete(tid, 0)
			}
		}

		now := time.Millisecond
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			now += time.Millisecond
			job := cl.SubmitJob(cluster.Batch, 0, now, specs)
			b.StartTimer()
			if _, _, err := sched.RunOnce(now); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			for _, tid := range job.Tasks {
				if cl.Task(tid).State == cluster.TaskRunning {
					cl.Complete(tid, now)
				}
			}
			b.StartTimer()
		}
	})
}
