module firmament

go 1.22
