// benchfig regenerates the tables and figures of the Firmament paper's
// evaluation (§7). Each experiment prints the same rows/series the paper
// reports, at a configurable scale.
//
// Usage:
//
//	benchfig -list
//	benchfig -fig fig14
//	benchfig -fig all -scale 2 -rounds 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"firmament/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id (fig3…fig19b, tab1…tab3) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1, "cluster size multiplier (10 ≈ the paper's full scale)")
		seed    = flag.Int64("seed", 42, "workload seed")
		rounds  = flag.Int("rounds", 0, "scheduling rounds per configuration (0: default)")
		timeout = flag.Duration("timeout", 0, "per-solve timeout (0: default 20s)")
	)
	flag.Parse()

	if *list || *fig == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *fig == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{
		Scale:         *scale,
		Seed:          *seed,
		Rounds:        *rounds,
		SolverTimeout: *timeout,
	}
	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *fig == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *fig)
		os.Exit(2)
	}
	run(e)
}
