// firmament-sim replays a Google-trace-shaped workload against a chosen
// scheduler in the Fauxmaster-style simulator (paper §7.1) and reports
// placement latency, response time, and solver statistics.
//
// Usage:
//
//	firmament-sim -machines 250 -util 0.9 -horizon 1m -scheduler firmament
//	firmament-sim -scheduler quincy -speedup 50
//	firmament-sim -scheduler sparrow -policy loadspread
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"firmament"
)

func main() {
	var (
		machines  = flag.Int("machines", 250, "cluster size")
		slots     = flag.Int("slots", 12, "slots per machine")
		util      = flag.Float64("util", 0.8, "target slot utilization")
		horizon   = flag.Duration("horizon", time.Minute, "trace horizon")
		speedup   = flag.Float64("speedup", 1, "trace acceleration factor")
		seed      = flag.Int64("seed", 1, "workload seed")
		scheduler = flag.String("scheduler", "firmament",
			"firmament | relaxation | inc-cost-scaling | quincy | sparrow | swarmkit | kubernetes | mesos")
		policyKind = flag.String("policy", "quincy", "flow policy: quincy | loadspread | netaware")
	)
	flag.Parse()

	workload := firmament.GenerateTrace(firmament.TraceConfig{
		Machines:        *machines,
		SlotsPerMachine: *slots,
		Utilization:     *util,
		Horizon:         *horizon,
		Speedup:         *speedup,
		Seed:            *seed,
		Prefill:         true,
	})
	fmt.Printf("workload: %d jobs, %d tasks over %v at %gx speedup\n",
		len(workload.Jobs), workload.NumTasks(), *horizon, *speedup)

	cfg := firmament.SimConfig{
		Topology: firmament.Topology{
			Racks:           (*machines + 24) / 25,
			MachinesPerRack: 25,
			SlotsPerMachine: *slots,
		},
		Workload:   workload,
		Seed:       *seed,
		UseStorage: true,
		MaxVirtual: 3 * *horizon,
	}

	mode, isFlow := map[string]firmament.SolverMode{
		"firmament":        firmament.ModeFirmament,
		"relaxation":       firmament.ModeRelaxationOnly,
		"inc-cost-scaling": firmament.ModeIncrementalCostScaling,
		"quincy":           firmament.ModeQuincy,
	}[*scheduler]
	switch {
	case isFlow:
		cfg.NewFlowScheduler = func(env *firmament.SimEnv) *firmament.Scheduler {
			c := firmament.DefaultConfig()
			c.Mode = mode
			var model firmament.CostModel
			switch *policyKind {
			case "loadspread":
				model = firmament.NewLoadSpreadPolicy(env.Cluster)
			case "netaware":
				model = firmament.NewNetworkAwarePolicy(env.Cluster, env.Fabric)
			default:
				model = firmament.NewQuincyPolicy(env.Cluster, env.Store)
			}
			return firmament.NewScheduler(env.Cluster, model, c)
		}
	case *scheduler == "sparrow":
		cfg.NewQueueScheduler = func(env *firmament.SimEnv) firmament.QueueScheduler {
			return firmament.NewSparrow(env.Cluster, *seed)
		}
	case *scheduler == "swarmkit":
		cfg.NewQueueScheduler = func(env *firmament.SimEnv) firmament.QueueScheduler {
			return firmament.NewSwarmKit(env.Cluster)
		}
	case *scheduler == "kubernetes":
		cfg.NewQueueScheduler = func(env *firmament.SimEnv) firmament.QueueScheduler {
			return firmament.NewKubernetes(env.Cluster)
		}
	case *scheduler == "mesos":
		cfg.NewQueueScheduler = func(env *firmament.SimEnv) firmament.QueueScheduler {
			return firmament.NewMesos(env.Cluster, *seed)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *scheduler)
		os.Exit(2)
	}

	start := time.Now()
	res, err := firmament.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscheduler: %s (simulated in %v wall time)\n",
		res.SchedulerName, time.Since(start).Round(time.Millisecond))
	fmt.Printf("tasks completed: %d   placed: %d   preemptions: %d   migrations: %d\n",
		res.TasksCompleted, res.Placed, res.Preempted, res.Migrated)
	if res.TotalBytes > 0 {
		fmt.Printf("input locality: %.0f%% machine-local, %.0f%% rack-local\n",
			res.Locality()*100, res.RackLocality()*100)
	}
	fmt.Println("\ntask placement latency:")
	for _, p := range []float64{25, 50, 75, 90, 99} {
		fmt.Printf("  p%-3.0f %9.4fs\n", p, res.PlacementLatency.Percentile(p))
	}
	if res.Rounds > 0 {
		fmt.Println("\nscheduling rounds:")
		fmt.Printf("  rounds: %d   algorithm runtime p50 %.4fs  p99 %.4fs\n",
			res.Rounds, res.AlgorithmRuntime.Percentile(50), res.AlgorithmRuntime.Percentile(99))
		fmt.Printf("  winners: %v\n", res.Winners)
	}
}
