// Command firmament-vet runs the project's invariant analyzers
// (internal/analysis) over the named package patterns and reports every
// violation of the determinism, hot-path-allocation, lock-order, and
// journal-ordering contracts. It exits non-zero if any diagnostic
// survives, so CI and scripts/bench.sh can gate on it.
//
// Usage:
//
//	firmament-vet [-list] [packages...]
//
// With no arguments it vets ./.... See docs/analysis.md for the
// invariants, annotations, and suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"firmament/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: firmament-vet [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "firmament-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "firmament-vet:", err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "firmament-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			found = true
			fmt.Println(d.String())
		}
	}
	if found {
		os.Exit(1)
	}
}
