// firmament-serve is a closed-loop load driver and network server for the
// long-running scheduling service. It runs in three modes:
//
//   - default: build an in-process service and hammer its front door from
//     N concurrent submitters, completing every task the moment it is
//     placed, and report sustained placement throughput — aggregate and
//     per submitter — with latency percentiles. With the sharded front
//     door, throughput should hold as -submitters grows past 16 (the old
//     single-lock collapse point); the CI contention smoke runs
//     `-submitters 32 -duration 2s` and fails on a zero-placement or
//     backlogged-deadlock outcome (the driver exits non-zero on either).
//
//   - -listen addr: serve the HTTP/JSON front door (internal/api) over a
//     fresh service and block until SIGINT/SIGTERM.
//
//   - -remote url: drive a front door served elsewhere — the same closed
//     loop, but submissions, completions (batched), placements (streamed
//     NDJSON) and stats all travel the network path. The CI network smoke
//     pairs this with -listen and fails on zero placements.
//
// Usage:
//
//	firmament-serve -submitters 8 -duration 5s
//	firmament-serve -submitters 32 -duration 2s          # scaling mode: per-submitter rates
//	firmament-serve -machines 256 -slots 16 -tasks-per-job 64 -mode relaxation
//	firmament-serve -max-pending-factor 4                # backpressure: SubmitWait past 4x slots
//	firmament-serve -listen 127.0.0.1:9090               # network server
//	firmament-serve -remote http://127.0.0.1:9090 -submitters 8   # network load generator
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"firmament"
	"firmament/internal/faultfs"
)

// jobTracker correlates placement events with in-flight jobs. Placements
// can arrive before the submitter has registered its job (submission and
// the scheduling loop race), so counts accumulate for unknown jobs too.
type jobTracker struct {
	mu      sync.Mutex
	seen    map[firmament.JobID]map[firmament.TaskID]bool
	need    map[firmament.JobID]int
	waiters map[firmament.JobID]chan struct{}
	done    map[firmament.JobID]bool // finished jobs: late re-placements are ignored
}

func newJobTracker() *jobTracker {
	return &jobTracker{
		seen:    make(map[firmament.JobID]map[firmament.TaskID]bool),
		need:    make(map[firmament.JobID]int),
		waiters: make(map[firmament.JobID]chan struct{}),
		done:    make(map[firmament.JobID]bool),
	}
}

// register declares a job with n tasks and returns a channel closed when
// every task has been placed at least once.
func (tr *jobTracker) register(j firmament.JobID, n int) <-chan struct{} {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ch := make(chan struct{})
	tr.need[j] = n
	tr.waiters[j] = ch
	if len(tr.seen[j]) >= n {
		tr.finishLocked(j)
	}
	return ch
}

// placed records one placement event.
func (tr *jobTracker) placed(j firmament.JobID, t firmament.TaskID) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done[j] {
		return // re-placement after a preemption on a finished job
	}
	m := tr.seen[j]
	if m == nil {
		m = make(map[firmament.TaskID]bool)
		tr.seen[j] = m
	}
	m[t] = true
	if n, ok := tr.need[j]; ok && len(m) >= n {
		tr.finishLocked(j)
	}
}

func (tr *jobTracker) finishLocked(j firmament.JobID) {
	close(tr.waiters[j])
	delete(tr.waiters, j)
	delete(tr.need, j)
	delete(tr.seen, j)
	tr.done[j] = true
}

// door abstracts the front door the closed loop drives: the in-process
// service or a remote one over HTTP. Both speak the same surface, so the
// same driver measures either path.
type door interface {
	submit(class firmament.JobClass, priority, tasks int) (firmament.JobID, error)
	complete(ids []firmament.TaskID) error
	watch() (<-chan firmament.Placement, func(), error)
	watchErr() error // abnormal watch-stream end, nil otherwise
	stats() (firmament.APIStats, error)
	close() error
}

// localDoor drives an in-process service.
type localDoor struct {
	svc  *firmament.SchedulerService
	wait bool // park on backpressure (SubmitWait) instead of shedding
}

func (d *localDoor) submit(class firmament.JobClass, priority, tasks int) (firmament.JobID, error) {
	f := d.svc.Submit
	if d.wait {
		f = d.svc.SubmitWait
	}
	job, err := f(class, priority, make([]firmament.TaskSpec, tasks))
	if err != nil {
		return 0, err
	}
	return job.ID, nil
}

func (d *localDoor) complete(ids []firmament.TaskID) error {
	for _, id := range ids {
		if err := d.svc.Complete(id); err != nil {
			return err
		}
	}
	return nil
}

func (d *localDoor) watch() (<-chan firmament.Placement, func(), error) {
	ch, cancel := d.svc.Watch()
	return ch, cancel, nil
}

func (d *localDoor) watchErr() error { return nil } // in-process channels cannot corrupt

func (d *localDoor) stats() (firmament.APIStats, error) {
	return firmament.APIStatsFromService(d.svc.Stats()), nil
}

func (d *localDoor) close() error { return d.svc.Close() }

// remoteDoor drives a front door across the network.
type remoteDoor struct {
	cli  *firmament.APIClient
	wait bool
	ws   *firmament.APIWatchStream
}

func (d *remoteDoor) submit(class firmament.JobClass, priority, tasks int) (firmament.JobID, error) {
	var job *firmament.RemoteJob
	var err error
	if d.wait {
		job, err = d.cli.SubmitWait(context.Background(), class, priority,
			make([]firmament.TaskSpec, tasks))
	} else {
		job, err = d.cli.Submit(class, priority, make([]firmament.TaskSpec, tasks))
	}
	if err != nil {
		return 0, err
	}
	return job.ID, nil
}

func (d *remoteDoor) complete(ids []firmament.TaskID) error { return d.cli.CompleteBatch(ids) }

func (d *remoteDoor) watch() (<-chan firmament.Placement, func(), error) {
	ws, err := d.cli.Watch(context.Background())
	if err != nil {
		return nil, nil, err
	}
	d.ws = ws
	return ws.C, ws.Cancel, nil
}

// watchErr reports an abnormal end of the placement stream (transport
// failure, wire corruption), so a hung closed loop can name its real cause.
func (d *remoteDoor) watchErr() error {
	if d.ws == nil {
		return nil
	}
	return d.ws.Err()
}

func (d *remoteDoor) stats() (firmament.APIStats, error) { return d.cli.Stats() }

// close leaves the remote server running; the driver only detaches.
func (d *remoteDoor) close() error { return nil }

func main() {
	var (
		submitters  = flag.Int("submitters", 8, "concurrent closed-loop submitters")
		duration    = flag.Duration("duration", 5*time.Second, "measurement duration")
		machines    = flag.Int("machines", 64, "cluster size")
		perRack     = flag.Int("machines-per-rack", 16, "machines per rack")
		slots       = flag.Int("slots", 32, "slots per machine")
		tasksPerJob = flag.Int("tasks-per-job", 32, "tasks per submitted job")
		interval    = flag.Duration("round-interval", time.Millisecond, "minimum gap between scheduling rounds")
		pendingFac  = flag.Float64("max-pending-factor", 0,
			"backpressure: block submission once pending > factor x slots (0 disables)")
		perSub = flag.Bool("per-submitter", true, "print per-submitter throughput")
		mode   = flag.String("mode", "firmament",
			"solver mode: firmament | relaxation | inc-cost-scaling | quincy")
		listen = flag.String("listen", "",
			"serve the HTTP front door on this address instead of driving load")
		remote = flag.String("remote", "",
			"drive a remote front door at this base URL instead of an in-process service")
		walDir = flag.String("wal-dir", "",
			"durable mode: journal every event to this directory and recover from it on start")
		fsync = flag.String("fsync", "batch",
			"journal fsync policy: always | batch | none (all flush to the OS before acking)")
		snapEvery = flag.Int64("snapshot-every", 0,
			"cut a cluster+graph snapshot every N rounds (0 = default 1024)")
		replay = flag.String("replay", "",
			"restore a recorded journal directory, report the recovered state, and exit")
		solverPar = flag.Int("solver-parallelism", runtime.GOMAXPROCS(0),
			"worker goroutines per MCMF solve (1 = strictly sequential, bit-deterministic)")
		templates = flag.Bool("templates", false,
			"enable the placement-template fast path: cache solver decisions for recurring job shapes "+
				"and commit repeats without a solve")
		onWALFailure = flag.String("on-wal-failure", "fail-stop",
			"durable mode: response to a permanent WAL failure: fail-stop | degrade "+
				"(degrade keeps scheduling volatile and re-arms durability when the disk heals)")
		probeInterval = flag.Duration("wal-probe-interval", time.Second,
			"durable mode: how often a degraded service probes the sick disk for recovery")
		faultWritesBefore = flag.Int("fault-after-writes", 0,
			"fault injection (testing): fail every WAL write with ENOSPC after this many "+
				"succeed (0 disables)")
		faultHealAfter = flag.Duration("fault-heal-after", 0,
			"fault injection (testing): heal the injected fault this long after startup "+
				"(0 = never heal)")
	)
	flag.Parse()

	if *listen != "" && *remote != "" {
		log.Fatal("-listen and -remote are mutually exclusive")
	}

	if *perRack > *machines {
		*perRack = *machines // small clusters: one partial rack, not a padded one
	}
	topo := firmament.Topology{
		Racks:           (*machines + *perRack - 1) / *perRack,
		MachinesPerRack: *perRack,
		SlotsPerMachine: *slots,
	}

	cfg := firmament.DefaultConfig()
	m, ok := map[string]firmament.SolverMode{
		"firmament":        firmament.ModeFirmament,
		"relaxation":       firmament.ModeRelaxationOnly,
		"inc-cost-scaling": firmament.ModeIncrementalCostScaling,
		"quincy":           firmament.ModeQuincy,
	}[*mode]
	if !ok {
		log.Fatalf("unknown mode %q", *mode)
	}
	cfg.Mode = m
	cfg.SolverParallelism = *solverPar
	scfg := firmament.ServiceConfig{
		RoundInterval:    *interval,
		MaxPendingFactor: *pendingFac,
		Templates:        *templates,
	}

	sync, err := firmament.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := firmament.ParseWALFailurePolicy(*onWALFailure)
	if err != nil {
		log.Fatal(err)
	}
	dur := firmament.DurabilityConfig{
		Sync: sync, SnapshotEvery: *snapEvery,
		OnWALFailure: policy, ProbeInterval: *probeInterval,
	}
	if *faultWritesBefore > 0 {
		// Scripted disk sickness for the fault smoke: WAL writes start
		// failing with ENOSPC after the configured number succeed, and the
		// disk optionally heals on a timer. The injected FS wraps the real
		// one, so everything written before (and after Heal) is real data.
		ffs := faultfs.New()
		ffs.Inject(faultfs.Fault{
			Op: faultfs.OpWrite, Path: "wal-",
			After: *faultWritesBefore, Count: faultfs.Persistent,
			Err: syscall.ENOSPC,
		})
		dur.FS = ffs
		if *faultHealAfter > 0 {
			time.AfterFunc(*faultHealAfter, func() {
				log.Printf("fault injection: healing injected ENOSPC (%d faults fired)", ffs.Fired())
				ffs.Heal()
			})
		}
		log.Printf("fault injection: WAL writes fail with ENOSPC after %d (heal after %v)",
			*faultWritesBefore, *faultHealAfter)
	}
	durOpts := func(dir string) firmament.ServiceOptions {
		d := dur
		d.Dir = dir
		return firmament.ServiceOptions{
			Topology: topo,
			Model: func(cl *firmament.Cluster) firmament.CostModel {
				return firmament.NewLoadSpreadPolicy(cl)
			},
			Scheduler:  cfg,
			Service:    scfg,
			Durability: d,
		}
	}

	if *replay != "" {
		runReplay(durOpts(*replay))
		return
	}

	if *listen != "" {
		runServer(*listen, topo, cfg, scfg, *mode, *walDir, durOpts)
		return
	}

	var d door
	if *remote != "" {
		cli := firmament.Dial(*remote)
		if err := waitReady(cli, 10*time.Second); err != nil {
			log.Fatalf("remote front door %s not ready: %v", *remote, err)
		}
		fmt.Printf("remote front door: %s\n", *remote)
		d = &remoteDoor{cli: cli, wait: *pendingFac > 0}
	} else {
		svc, cl := openService(topo, cfg, scfg, *walDir, durOpts)
		fmt.Printf("cluster: %d machines in %d racks, %d slots, %d front-door shards\n",
			cl.NumMachines(), cl.NumRacks(), cl.TotalSlots(), cl.NumShards())
		d = &localDoor{svc: svc, wait: *pendingFac > 0}
	}
	fmt.Printf("driver: mode %s, %d submitters x %d tasks/job, round interval %v, max-pending-factor %g\n",
		*mode, *submitters, *tasksPerJob, *interval, *pendingFac)

	runDriver(d, *submitters, *tasksPerJob, *duration, *perSub, *templates)
}

// openService builds the in-process service: plain in-memory, or — with
// -wal-dir — durable, recovering whatever a previous run journaled there.
func openService(topo firmament.Topology, cfg firmament.Config, scfg firmament.ServiceConfig,
	walDir string, durOpts func(string) firmament.ServiceOptions) (*firmament.SchedulerService, *firmament.Cluster) {
	if walDir == "" {
		cl := firmament.NewCluster(topo)
		return firmament.NewService(cl, firmament.NewLoadSpreadPolicy(cl), cfg, scfg), cl
	}
	svc, info, err := firmament.OpenService(durOpts(walDir))
	if err != nil {
		log.Fatalf("open journal %s: %v", walDir, err)
	}
	logRestore(walDir, info)
	return svc, svc.Cluster()
}

// logRestore narrates what recovery found, so operators (and the crash
// smoke) can see a restart recovered rather than restarted empty.
func logRestore(dir string, info *firmament.RestoreInfo) {
	if info.Restored || info.ReplayedRecords > 0 {
		log.Printf("recovered journal %s: snapshot at round %d, %d records (%d rounds) replayed, "+
			"%d pending ops; %d running / %d pending tasks",
			dir, info.SnapshotRound, info.ReplayedRecords, info.ReplayedRounds,
			info.PendingOps, info.RunningTasks, info.PendingTasks)
	} else {
		log.Printf("journal %s: fresh (nothing to recover)", dir)
	}
}

// runReplay restores a recorded journal into a detached in-memory service,
// reports the recovered state, and exits — the -replay inspection workflow.
func runReplay(opts firmament.ServiceOptions) {
	svc, info, err := firmament.ReplayJournal(opts)
	if err != nil {
		log.Fatalf("replay %s: %v", opts.Durability.Dir, err)
	}
	logRestore(opts.Durability.Dir, info)
	cl := svc.Cluster()
	st := svc.Stats()
	fmt.Printf("cluster: %d machines in %d racks, %d slots\n",
		cl.NumMachines(), cl.NumRacks(), cl.TotalSlots())
	fmt.Printf("state: %d rounds, %d submitted, %d placed, %d completed, "+
		"%d running, %d pending\n",
		st.Rounds, st.Submitted, st.Placed, st.Completed, st.Running, st.Pending)
	fmt.Printf("churn: %d migrated, %d preempted, %d stale completions, "+
		"%d stale machine ops, %d stale decisions\n",
		st.Migrated, st.Preempted, st.StaleCompletions, st.StaleMachineOps, st.StaleDecisions)
	fmt.Printf("solver: %d warm starts, %d full restarts\n",
		st.SolverWarmStarts, st.SolverFullRestarts)
	if st.TemplateHits+st.TemplateMisses+st.TemplateInvalidations > 0 {
		fmt.Printf("templates: %d hits, %d misses, %d invalidations\n",
			st.TemplateHits, st.TemplateMisses, st.TemplateInvalidations)
	}
	if err := svc.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}

// runServer serves the HTTP front door until SIGINT/SIGTERM, then closes
// the service (ending watch streams, 503ing new work, and — in durable
// mode — cutting a final snapshot) and drains the listener.
func runServer(addr string, topo firmament.Topology, cfg firmament.Config,
	scfg firmament.ServiceConfig, mode, walDir string,
	durOpts func(string) firmament.ServiceOptions) {
	svc, cl := openService(topo, cfg, scfg, walDir, durOpts)
	srv := &http.Server{Addr: addr, Handler: firmament.NewAPIServer(svc)}

	fmt.Printf("cluster: %d machines in %d racks, %d slots, %d front-door shards\n",
		cl.NumMachines(), cl.NumRacks(), cl.TotalSlots(), cl.NumShards())
	fmt.Printf("serving HTTP front door on %s (mode %s)\n", addr, mode)

	// Narrate health transitions (ok -> degraded -> ok on a sick disk that
	// heals, or -> failed under fail-stop) so an operator tailing the log
	// sees the durability state machine move, not just a flipped healthz.
	healthDone := make(chan struct{})
	defer close(healthDone)
	go func() {
		last := svc.Health()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-healthDone:
				return
			case <-tick.C:
			}
			h := svc.Health()
			if h.State != last.State {
				if h.Cause != "" {
					log.Printf("health: %s -> %s (%s)", last.State, h.State, h.Cause)
				} else {
					log.Printf("health: %s -> %s", last.State, h.State)
				}
				last = h
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("%v: shutting down", s)
		if err := svc.Close(); err != nil {
			log.Printf("service error: %v", err)
			defer os.Exit(1)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

// waitReady polls the remote stats endpoint until the server answers —
// the network smoke starts server and driver concurrently.
func waitReady(cli *firmament.APIClient, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		_, err := cli.Stats()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runDriver is the closed loop: N submitters push jobs through the door, a
// collector completes every task the moment it is placed (batched through
// one request on the network path), and the run is judged on the delta of
// the door's stats.
func runDriver(d door, submitters, tasksPerJob int, duration time.Duration, perSub, templates bool) {
	st0, err := d.stats()
	if err != nil {
		log.Fatalf("stats: %v", err)
	}

	tracker := newJobTracker()
	events, cancelWatch, err := d.watch()
	if err != nil {
		log.Fatalf("watch: %v", err)
	}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		// Batch completions: on the network path one request completes a
		// whole burst of placements instead of one round trip per task.
		batch := make([]firmament.TaskID, 0, 256)
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			err := d.complete(batch)
			batch = batch[:0]
			return err == nil
		}
		for p := range events {
			if p.Kind == firmament.DecisionPlaced {
				batch = append(batch, p.Task)
				tracker.placed(p.Job, p.Task)
			}
			if len(batch) >= 256 || len(events) == 0 {
				if !flush() {
					return // service closed
				}
			}
		}
		flush()
	}()

	start := time.Now()
	deadline := start.Add(duration)
	jobsDone := make([]int, submitters) // per-submitter fully placed jobs
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				jobID, err := d.submit(firmament.Batch, 0, tasksPerJob)
				if err != nil {
					// On the network path this can also be a transport
					// failure or an unexpected 429 — say so instead of
					// quietly thinning the offered load.
					if !errors.Is(err, firmament.ErrServiceClosed) {
						log.Printf("submitter %d stopping: %v", i, err)
					}
					return
				}
				// Watchdog: a dropped publication (slow collector) would
				// otherwise hang the closed loop forever.
				select {
				case <-tracker.register(jobID, tasksPerJob):
					jobsDone[i]++
				case <-time.After(time.Minute):
					if werr := d.watchErr(); werr != nil {
						log.Fatalf("job %d not fully placed after 1m: watch stream failed: %v",
							jobID, werr)
					}
					log.Fatalf("job %d not fully placed after 1m "+
						"(placement events dropped? see watch_dropped)", jobID)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st, err := d.stats()
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	cancelWatch()
	if err := d.close(); err != nil {
		log.Printf("service error: %v", err)
		defer os.Exit(1)
	}
	<-collectorDone

	// Counters are deltas over the run (a remote server may carry history);
	// the distribution summaries are cumulative server-side.
	placed := st.Placed - st0.Placed
	rounds := st.Rounds - st0.Rounds
	ms := func(s float64) string { return fmt.Sprintf("%.2fms", s*1000) }
	fmt.Printf("ran %.2fs: %d placements (%.0f tasks/sec), %d rounds (%.0f/sec)\n",
		elapsed.Seconds(), placed, float64(placed)/elapsed.Seconds(),
		rounds, float64(rounds)/elapsed.Seconds())
	fmt.Printf("events/round: batch mean %.1f max %.0f; backlog at round end mean %.1f\n",
		st.BatchSize.Mean, st.BatchSize.Max, st.QueueDepth.Mean)
	fmt.Printf("algorithm runtime: p50 %s p99 %s\n",
		ms(st.AlgorithmRuntime.P50), ms(st.AlgorithmRuntime.P99))
	fmt.Printf("placement latency: p50 %s p99 %s max %s\n",
		ms(st.PlacementLatency.P50), ms(st.PlacementLatency.P99), ms(st.PlacementLatency.Max))
	if n := st.Backlogged - st0.Backlogged; n > 0 {
		fmt.Printf("backpressure: %d submissions refused or delayed\n", n)
	}
	churn := (st.Migrated - st0.Migrated) + (st.Preempted - st0.Preempted) +
		(st.StaleCompletions - st0.StaleCompletions) + (st.StaleDecisions - st0.StaleDecisions)
	if churn > 0 {
		fmt.Printf("churn: %d migrated, %d preempted, %d stale completions, %d stale decisions\n",
			st.Migrated-st0.Migrated, st.Preempted-st0.Preempted,
			st.StaleCompletions-st0.StaleCompletions, st.StaleDecisions-st0.StaleDecisions)
	}
	if perSub {
		for i, n := range jobsDone {
			tasks := n * tasksPerJob
			fmt.Printf("  submitter %2d: %6d jobs %8d tasks (%.0f tasks/sec)\n",
				i, n, tasks, float64(tasks)/elapsed.Seconds())
		}
	}
	if templates {
		hits := st.TemplateHits - st0.TemplateHits
		misses := st.TemplateMisses - st0.TemplateMisses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("templates: %d hits, %d misses (%.0f%% hit rate), %d invalidations\n",
			hits, misses, rate*100,
			st.TemplateInvalidations-st0.TemplateInvalidations)
		// The closed loop completes every job before resubmitting the same
		// shape — the exact workload the cache exists for. Zero hits means
		// the fast path is broken, and the CI template smoke relies on this
		// exit code to notice.
		if submitters > 0 && hits == 0 {
			log.Printf("FAIL: -templates on, yet zero template hits in %.2fs", elapsed.Seconds())
			os.Exit(1)
		}
	}
	// A load driver that placed nothing despite having submitters is a
	// failure, not a quiet run — the CI smokes rely on this exit code.
	// (-submitters 0 remains a clean zero-run.)
	if submitters > 0 && placed == 0 {
		log.Printf("FAIL: zero placements in %.2fs", elapsed.Seconds())
		os.Exit(1)
	}
}
