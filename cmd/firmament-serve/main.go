// firmament-serve is a closed-loop load driver for the long-running
// scheduling service: N concurrent submitters hammer the service's front
// door, completing every task the moment it is placed, and the driver
// reports the sustained placement throughput — aggregate and per submitter
// — with latency percentiles. With the sharded front door, throughput
// should hold as -submitters grows past 16 (the old single-lock collapse
// point); the CI contention smoke runs `-submitters 32 -duration 2s` and
// fails on a zero-placement or backlogged-deadlock outcome (the driver
// exits non-zero on either).
//
// Usage:
//
//	firmament-serve -submitters 8 -duration 5s
//	firmament-serve -submitters 32 -duration 2s          # scaling mode: per-submitter rates
//	firmament-serve -machines 256 -slots 16 -tasks-per-job 64 -mode relaxation
//	firmament-serve -max-pending-factor 4                # backpressure: SubmitWait past 4x slots
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"firmament"
)

// jobTracker correlates placement events with in-flight jobs. Placements
// can arrive before the submitter has registered its job (submission and
// the scheduling loop race), so counts accumulate for unknown jobs too.
type jobTracker struct {
	mu      sync.Mutex
	seen    map[firmament.JobID]map[firmament.TaskID]bool
	need    map[firmament.JobID]int
	waiters map[firmament.JobID]chan struct{}
	done    map[firmament.JobID]bool // finished jobs: late re-placements are ignored
}

func newJobTracker() *jobTracker {
	return &jobTracker{
		seen:    make(map[firmament.JobID]map[firmament.TaskID]bool),
		need:    make(map[firmament.JobID]int),
		waiters: make(map[firmament.JobID]chan struct{}),
		done:    make(map[firmament.JobID]bool),
	}
}

// register declares a job with n tasks and returns a channel closed when
// every task has been placed at least once.
func (tr *jobTracker) register(j firmament.JobID, n int) <-chan struct{} {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ch := make(chan struct{})
	tr.need[j] = n
	tr.waiters[j] = ch
	if len(tr.seen[j]) >= n {
		tr.finishLocked(j)
	}
	return ch
}

// placed records one placement event.
func (tr *jobTracker) placed(j firmament.JobID, t firmament.TaskID) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done[j] {
		return // re-placement after a preemption on a finished job
	}
	m := tr.seen[j]
	if m == nil {
		m = make(map[firmament.TaskID]bool)
		tr.seen[j] = m
	}
	m[t] = true
	if n, ok := tr.need[j]; ok && len(m) >= n {
		tr.finishLocked(j)
	}
}

func (tr *jobTracker) finishLocked(j firmament.JobID) {
	close(tr.waiters[j])
	delete(tr.waiters, j)
	delete(tr.need, j)
	delete(tr.seen, j)
	tr.done[j] = true
}

func main() {
	var (
		submitters  = flag.Int("submitters", 8, "concurrent closed-loop submitters")
		duration    = flag.Duration("duration", 5*time.Second, "measurement duration")
		machines    = flag.Int("machines", 64, "cluster size")
		perRack     = flag.Int("machines-per-rack", 16, "machines per rack")
		slots       = flag.Int("slots", 32, "slots per machine")
		tasksPerJob = flag.Int("tasks-per-job", 32, "tasks per submitted job")
		interval    = flag.Duration("round-interval", time.Millisecond, "minimum gap between scheduling rounds")
		pendingFac  = flag.Float64("max-pending-factor", 0,
			"backpressure: block submission once pending > factor x slots (0 disables)")
		perSub = flag.Bool("per-submitter", true, "print per-submitter throughput")
		mode   = flag.String("mode", "firmament",
			"solver mode: firmament | relaxation | inc-cost-scaling | quincy")
	)
	flag.Parse()

	if *perRack > *machines {
		*perRack = *machines // small clusters: one partial rack, not a padded one
	}
	topo := firmament.Topology{
		Racks:           (*machines + *perRack - 1) / *perRack,
		MachinesPerRack: *perRack,
		SlotsPerMachine: *slots,
	}
	cl := firmament.NewCluster(topo)

	cfg := firmament.DefaultConfig()
	m, ok := map[string]firmament.SolverMode{
		"firmament":        firmament.ModeFirmament,
		"relaxation":       firmament.ModeRelaxationOnly,
		"inc-cost-scaling": firmament.ModeIncrementalCostScaling,
		"quincy":           firmament.ModeQuincy,
	}[*mode]
	if !ok {
		log.Fatalf("unknown mode %q", *mode)
	}
	cfg.Mode = m

	svc := firmament.NewService(cl, firmament.NewLoadSpreadPolicy(cl), cfg,
		firmament.ServiceConfig{RoundInterval: *interval, MaxPendingFactor: *pendingFac})

	fmt.Printf("cluster: %d machines in %d racks, %d slots, %d front-door shards\n",
		cl.NumMachines(), cl.NumRacks(), cl.TotalSlots(), cl.NumShards())
	fmt.Printf("service: mode %s, %d submitters x %d tasks/job, round interval %v, max-pending-factor %g\n",
		*mode, *submitters, *tasksPerJob, *interval, *pendingFac)

	// Collector: complete every task the moment it is placed (zero-length
	// tasks — the driver measures scheduler throughput, not compute), and
	// feed the tracker.
	tracker := newJobTracker()
	events, cancelWatch := svc.Watch()
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for p := range events {
			if p.Kind != firmament.DecisionPlaced {
				continue
			}
			if err := svc.Complete(p.Task); err != nil {
				return // service closed
			}
			tracker.placed(p.Job, p.Task)
		}
	}()

	// Submit through SubmitWait when backpressure is on (the closed loop
	// should park, not shed); plain Submit otherwise.
	submit := svc.Submit
	if *pendingFac > 0 {
		submit = svc.SubmitWait
	}

	start := time.Now()
	deadline := start.Add(*duration)
	jobsDone := make([]int, *submitters) // per-submitter fully placed jobs
	var wg sync.WaitGroup
	for i := 0; i < *submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				job, err := submit(firmament.Batch, 0,
					make([]firmament.TaskSpec, *tasksPerJob))
				if err != nil {
					return
				}
				// Watchdog: a dropped publication (slow collector) would
				// otherwise hang the closed loop forever.
				select {
				case <-tracker.register(job.ID, *tasksPerJob):
					jobsDone[i]++
				case <-time.After(time.Minute):
					log.Fatalf("job %d not fully placed after 1m "+
						"(placement events dropped? see DroppedPublications)", job.ID)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := svc.Stats()
	cancelWatch()
	if err := svc.Close(); err != nil {
		log.Printf("service error: %v", err)
		defer os.Exit(1)
	}
	<-collectorDone

	ms := func(s float64) string { return fmt.Sprintf("%.2fms", s*1000) }
	fmt.Printf("ran %.2fs: %d placements (%.0f tasks/sec), %d rounds (%.0f/sec)\n",
		elapsed.Seconds(), st.Placed, float64(st.Placed)/elapsed.Seconds(),
		st.Rounds, float64(st.Rounds)/elapsed.Seconds())
	fmt.Printf("events/round: batch mean %.1f max %.0f; backlog at round end mean %.1f\n",
		st.BatchSize.Mean(), st.BatchSize.Max(), st.QueueDepth.Mean())
	fmt.Printf("algorithm runtime: p50 %s p99 %s\n",
		ms(st.AlgorithmRuntime.Percentile(50)), ms(st.AlgorithmRuntime.Percentile(99)))
	fmt.Printf("placement latency: p50 %s p99 %s max %s\n",
		ms(st.PlacementLatency.Percentile(50)), ms(st.PlacementLatency.Percentile(99)),
		ms(st.PlacementLatency.Max()))
	if st.Backlogged > 0 {
		fmt.Printf("backpressure: %d submissions refused or delayed\n", st.Backlogged)
	}
	if st.Migrated+st.Preempted+st.Stale() > 0 {
		fmt.Printf("churn: %d migrated, %d preempted, %d stale completions, %d stale decisions\n",
			st.Migrated, st.Preempted, st.StaleCompletions, st.StaleDecisions)
	}
	if *perSub {
		for i, n := range jobsDone {
			tasks := n * *tasksPerJob
			fmt.Printf("  submitter %2d: %6d jobs %8d tasks (%.0f tasks/sec)\n",
				i, n, tasks, float64(tasks)/elapsed.Seconds())
		}
	}
	// A load driver that placed nothing despite having submitters is a
	// failure, not a quiet run — the CI contention smoke relies on this
	// exit code. (-submitters 0 remains a clean zero-run.)
	if *submitters > 0 && st.Placed == 0 {
		log.Printf("FAIL: zero placements in %.2fs", elapsed.Seconds())
		os.Exit(1)
	}
}
