// tracegen emits a synthetic Google-trace-shaped workload (paper §7.1) as
// CSV for inspection or external tooling. One row per task:
//
//	job_id,submit_ms,class,priority,task_index,duration_ms,input_bytes,net_demand_bps
//
// Usage:
//
//	tracegen -machines 1000 -horizon 10m > trace.csv
//	tracegen -machines 100 -speedup 200 -summary
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"firmament"
)

func main() {
	var (
		machines = flag.Int("machines", 250, "cluster size the workload targets")
		slots    = flag.Int("slots", 12, "slots per machine")
		util     = flag.Float64("util", 0.8, "target slot utilization")
		horizon  = flag.Duration("horizon", 5*time.Minute, "trace horizon")
		speedup  = flag.Float64("speedup", 1, "trace acceleration factor")
		seed     = flag.Int64("seed", 1, "generation seed")
		prefill  = flag.Bool("prefill", true, "include the steady-state backlog at t=0")
		summary  = flag.Bool("summary", false, "print distribution summary instead of CSV")
	)
	flag.Parse()

	w := firmament.GenerateTrace(firmament.TraceConfig{
		Machines:        *machines,
		SlotsPerMachine: *slots,
		Utilization:     *util,
		Horizon:         *horizon,
		Speedup:         *speedup,
		Seed:            *seed,
		Prefill:         *prefill,
	})

	if *summary {
		printSummary(w)
		return
	}

	out := csv.NewWriter(os.Stdout)
	defer out.Flush()
	out.Write([]string{"job_id", "submit_ms", "class", "priority", "task_index",
		"duration_ms", "input_bytes", "net_demand_bps"})
	for jobID, j := range w.Jobs {
		for i, t := range j.Tasks {
			out.Write([]string{
				strconv.Itoa(jobID),
				strconv.FormatInt(j.Submit.Milliseconds(), 10),
				j.Class.String(),
				strconv.Itoa(j.Priority),
				strconv.Itoa(i),
				strconv.FormatInt(t.Duration.Milliseconds(), 10),
				strconv.FormatInt(t.InputSize, 10),
				strconv.FormatInt(t.NetDemand, 10),
			})
		}
	}
}

func printSummary(w *firmament.Workload) {
	jobs := len(w.Jobs)
	tasks := w.NumTasks()
	big, service := 0, 0
	var maxSize int
	for _, j := range w.Jobs {
		if len(j.Tasks) > 1000 {
			big++
		}
		if len(j.Tasks) > maxSize {
			maxSize = len(j.Tasks)
		}
		if j.Class == firmament.Service {
			service++
		}
	}
	fmt.Printf("jobs: %d (%d service)\ntasks: %d (mean %.1f per job, max %d)\n",
		jobs, service, tasks, float64(tasks)/float64(jobs), maxSize)
	fmt.Printf("jobs over 1000 tasks: %d (%.2f%%; the Google trace has 1.2%%)\n",
		big, 100*float64(big)/float64(jobs))
	fmt.Printf("horizon: %v\n", w.Horizon)
}
